package link

import (
	"taq/internal/obs"
	"taq/internal/sim"
)

// Metrics bundles the link's registry instruments: transmit counters
// and the discipline-agnostic sojourn histogram (TAQ's per-class
// histogram refines the same delay by victim class; this one also
// covers the baseline disciplines). A nil *Metrics disables recording,
// matching the nil-Recorder contract.
type Metrics struct {
	// TxPackets / TxBytes count traffic leaving the link
	// (taq_link_tx_packets_total, taq_link_tx_bytes_total).
	TxPackets *obs.Counter
	TxBytes   *obs.Counter
	// QueueDelay is the enqueue-to-dequeue sojourn across whatever
	// discipline the link drains (taq_link_queue_delay_seconds).
	QueueDelay *obs.Histogram
}

// NewMetrics registers the link schema on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		TxPackets: reg.Counter("taq_link_tx_packets_total",
			"Packets fully serialized onto the bottleneck link."),
		TxBytes: reg.Counter("taq_link_tx_bytes_total",
			"Bytes fully serialized onto the bottleneck link."),
		QueueDelay: reg.Histogram("taq_link_queue_delay_seconds",
			"Bottleneck sojourn time from enqueue to dequeue, all classes.",
			obs.DelayBuckets()),
	}
}

// observeDequeue records a packet leaving the queue onto the wire.
//
//taq:hotpath nil-receiver metrics hook on the link pump path
func (m *Metrics) observeDequeue(sojourn sim.Time) {
	if m == nil {
		return
	}
	m.QueueDelay.Observe(sojourn)
}

// observeTx records a completed serialization.
//
//taq:hotpath nil-receiver metrics hook on the link transmit path
func (m *Metrics) observeTx(size int) {
	if m == nil {
		return
	}
	m.TxPackets.Inc()
	m.TxBytes.Add(uint64(size))
}

// SetMetrics installs the bundle on the link. A nil bundle (the
// default) disables metrics.
func (l *Link) SetMetrics(mx *Metrics) { l.mx = mx }
