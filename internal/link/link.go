// Package link models network links. The bottleneck Link serializes
// packets at a configured rate out of a queue.Discipline; simple Pipe
// links model uncongested propagation (access links and the reverse ACK
// path, which per the paper carry no congestion).
package link

import (
	"taq/internal/obs"
	"taq/internal/packet"
	"taq/internal/queue"
	"taq/internal/sim"
)

// Bps is a link rate in bits per second.
type Bps float64

// Common rates.
const (
	Kbps Bps = 1e3
	Mbps Bps = 1e6
)

// TxTime returns the serialization time of size bytes at rate r.
func (r Bps) TxTime(size int) sim.Time {
	if r <= 0 {
		return 0
	}
	return sim.Time(float64(size*8) / float64(r) * float64(sim.Second))
}

// Link is a store-and-forward bottleneck: arriving packets enter the
// queue discipline; the link drains the discipline at Rate, delivering
// each packet after its serialization time plus the propagation Delay.
type Link struct {
	run     sim.Runner
	rate    Bps
	delay   sim.Time
	disc    queue.Discipline
	busy    bool
	deliver func(*packet.Packet)
	rec     *obs.Recorder
	mx      *Metrics

	// txPkt is the packet currently serializing. prop holds packets in
	// propagation: the delay is constant, so propagation arrivals occur
	// in departure order and a FIFO carries exactly the per-packet state
	// the delivery closures used to capture. txDone and deliverNext are
	// bound once in New so the per-packet path allocates no closures.
	txPkt       *packet.Packet
	prop        queue.FIFO
	txDone      func()
	deliverNext func()

	// Stats.
	SentPackets  uint64
	SentBytes    uint64
	BusyTime     sim.Time // accumulated serialization time (utilization)
	lastTxFinish sim.Time
}

// New returns a link draining disc at rate with propagation delay,
// handing packets to deliver after serialization+propagation.
func New(run sim.Runner, rate Bps, delay sim.Time, disc queue.Discipline, deliver func(*packet.Packet)) *Link {
	l := &Link{run: run, rate: rate, delay: delay, disc: disc, deliver: deliver}
	// Bind the timer callbacks once: a method value allocates, so taking
	// them here keeps pump/finishTx closure-free per packet.
	l.txDone = l.finishTx
	l.deliverNext = l.deliverHead
	return l
}

// Discipline returns the queue discipline, e.g. for stats.
func (l *Link) Discipline() queue.Discipline { return l.disc }

// SetRecorder installs a trace recorder. The link is the chokepoint
// every discipline's traffic flows through, so it records the generic
// enqueue/dequeue lifecycle (class -1); TAQ adds its class-specific
// events itself. A nil recorder (the default) disables tracing.
func (l *Link) SetRecorder(rec *obs.Recorder) { l.rec = rec }

// Rate returns the link rate.
func (l *Link) Rate() Bps { return l.rate }

// Enqueue offers p to the link's queue and starts transmission if the
// link is idle. Drops are reported through the discipline's drop hook.
//
//taq:hotpath every packet of every experiment crosses the bottleneck here
func (l *Link) Enqueue(p *packet.Packet) {
	p.Enqueued = l.run.Now()
	if l.rec != nil {
		l.rec.Enqueue(p.Enqueued, p, -1)
	}
	l.disc.Enqueue(p)
	l.pump()
}

func (l *Link) pump() {
	if l.busy {
		return
	}
	p := l.disc.Dequeue()
	if p == nil {
		return
	}
	if l.rec != nil {
		l.rec.Dequeue(l.run.Now(), p, -1)
	}
	if l.mx != nil {
		// Guarded so the sojourn arithmetic is skipped when metrics are
		// off, per the nil-hook convention.
		l.mx.observeDequeue(l.run.Now() - p.Enqueued)
	}
	l.busy = true
	l.txPkt = p
	tx := l.rate.TxTime(p.Size)
	l.BusyTime += tx
	// Fire-and-forget per-packet events go through sim.After with the
	// prebuilt callback so the hottest scheduling site in every
	// experiment allocates neither a timer nor a closure.
	sim.After(l.run, tx, l.txDone)
}

// finishTx runs when the serializing packet's last bit leaves the
// link: it moves the packet into the propagation FIFO, schedules its
// delivery one propagation delay out, and starts the next
// transmission.
func (l *Link) finishTx() {
	p := l.txPkt
	l.txPkt = nil
	l.busy = false
	l.SentPackets++
	l.SentBytes += uint64(p.Size)
	l.mx.observeTx(p.Size)
	l.lastTxFinish = l.run.Now()
	l.prop.Push(p)
	sim.After(l.run, l.delay, l.deliverNext)
	l.pump()
}

// deliverHead hands the oldest in-propagation packet to the sink.
func (l *Link) deliverHead() {
	l.deliver(l.prop.Pop())
}

// Utilization returns BusyTime divided by elapsed, the fraction of time
// the link was transmitting over [0, elapsed].
func (l *Link) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(elapsed)
}

// Pipe is an uncongested, lossless link: it delivers every packet after
// a fixed delay. Used for access links and the ACK return path.
type Pipe struct {
	run     sim.Runner
	delay   sim.Time
	deliver func(*packet.Packet)

	// inflight and deliverNext mirror Link's closure-free delivery: the
	// constant delay makes deliveries FIFO, so one prebuilt callback
	// popping a FIFO replaces a closure per packet.
	inflight    queue.FIFO
	deliverNext func()
}

// NewPipe returns a fixed-delay lossless link.
func NewPipe(run sim.Runner, delay sim.Time, deliver func(*packet.Packet)) *Pipe {
	p := &Pipe{run: run, delay: delay, deliver: deliver}
	p.deliverNext = p.deliverHead
	return p
}

// Send delivers p after the pipe's delay.
//
//taq:hotpath per-packet path of every access link and the ACK return path
func (p *Pipe) Send(pkt *packet.Packet) {
	p.inflight.Push(pkt)
	sim.After(p.run, p.delay, p.deliverNext)
}

// deliverHead hands the oldest in-flight packet to the sink.
func (p *Pipe) deliverHead() {
	p.deliver(p.inflight.Pop())
}
