package capture

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"taq/internal/packet"
	"taq/internal/sim"
)

func ev(at sim.Time, k EventKind, flow packet.FlowID, size int) Event {
	return Event{At: at, Kind: k, Flow: flow, Size: size}
}

func TestRoundTrip(t *testing.T) {
	var r Recorder
	r.Record(100*sim.Millisecond, Arrive, &packet.Packet{Flow: 1, Seq: 2, Size: 500})
	r.Record(110*sim.Millisecond, Drop, &packet.Packet{Flow: 1, Seq: 3, Size: 500})
	r.Record(120*sim.Millisecond, Deliver, &packet.Packet{Flow: 2, Seq: 0, Size: 40})
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d events", len(got))
	}
	for i, e := range got {
		want := r.Events[i]
		if e.Kind != want.Kind || e.Flow != want.Flow || e.Seq != want.Seq || e.Size != want.Size {
			t.Errorf("event %d = %+v, want %+v", i, e, want)
		}
		if d := e.At - want.At; d < -sim.Microsecond || d > sim.Microsecond {
			t.Errorf("event %d time drift %v", i, d)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("garbage\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Parse(strings.NewReader("1.0 XXX 1 2 3\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	got, err := Parse(strings.NewReader("# comment\n\n1.0 DLV 1 2 500\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("parse = %v, %v", got, err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []EventKind{Arrive, Drop, Deliver} {
		s := k.String()
		back, err := kindFrom(s)
		if err != nil || back != k {
			t.Errorf("kind %v round-trips to %v, %v", k, back, err)
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestAnalyzeShutdownAndConcentration(t *testing.T) {
	// Slice width 10s, 4 flows, one slice:
	//   flow 0 delivers 8000 B, flow 1 delivers 1000 B,
	//   flow 2 delivers 1000 B, flow 3 nothing.
	events := []Event{
		ev(1*sim.Second, Deliver, 0, 8000),
		ev(2*sim.Second, Deliver, 1, 1000),
		ev(3*sim.Second, Deliver, 2, 1000),
		ev(4*sim.Second, Drop, 3, 500), // drops don't count
	}
	stats := Analyze(events, 10*sim.Second, 4, 10*sim.Second)
	if len(stats) != 1 {
		t.Fatalf("stats = %d slices", len(stats))
	}
	st := stats[0]
	if st.ShutdownFrac != 0.25 {
		t.Errorf("shutdown frac = %v, want 0.25 (flow 3)", st.ShutdownFrac)
	}
	// Flow 0 alone covers 80% of 10000 bytes → top-80 fraction 1/4.
	if st.Top80Frac != 0.25 {
		t.Errorf("top80 frac = %v, want 0.25", st.Top80Frac)
	}
	if st.DeliveredBytes != 10000 {
		t.Errorf("delivered = %d", st.DeliveredBytes)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	if Analyze(nil, 0, 4, sim.Second) != nil {
		t.Error("zero width should return nil")
	}
	stats := Analyze(nil, sim.Second, 2, 2*sim.Second)
	if len(stats) != 2 || stats[0].ShutdownFrac != 1 {
		t.Errorf("empty trace stats = %+v", stats)
	}
	if MeanShutdownFrac(nil) != 0 || MeanTop80Frac(nil) != 0 {
		t.Error("means of no stats should be 0")
	}
}

func TestMeans(t *testing.T) {
	stats := []SliceStat{{ShutdownFrac: 0.2, Top80Frac: 0.4}, {ShutdownFrac: 0.4, Top80Frac: 0.6}}
	if m := MeanShutdownFrac(stats); math.Abs(m-0.3) > 1e-12 {
		t.Errorf("mean shutdown = %v", m)
	}
	if m := MeanTop80Frac(stats); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean top80 = %v", m)
	}
}
