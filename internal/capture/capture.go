// Package capture records per-packet events at the bottleneck — the
// simulator's stand-in for the pcap traces the paper examines (§2.3:
// "Upon closer examination in the pcap traces for these simulations,
// we find that over 20-second time slices roughly 30% of the flows are
// completely shut down and roughly 40% of the flows consume more than
// 80% of the link bandwidth"). It stores events in memory, round-trips
// them through a text format, and computes the per-slice shutdown and
// concentration statistics behind that observation.
package capture

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"taq/internal/packet"
	"taq/internal/sim"
)

// EventKind says what happened to a packet at the bottleneck.
type EventKind uint8

const (
	// Arrive: the packet reached the bottleneck queue.
	Arrive EventKind = iota
	// Drop: the queue discipline discarded it.
	Drop
	// Deliver: it left the bottleneck toward the receiver.
	Deliver
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Arrive:
		return "ARR"
	case Drop:
		return "DRP"
	case Deliver:
		return "DLV"
	default:
		return fmt.Sprintf("K%d", uint8(k))
	}
}

func kindFrom(s string) (EventKind, error) {
	switch s {
	case "ARR":
		return Arrive, nil
	case "DRP":
		return Drop, nil
	case "DLV":
		return Deliver, nil
	default:
		return 0, fmt.Errorf("capture: unknown event kind %q", s)
	}
}

// Event is one packet-level observation.
type Event struct {
	At   sim.Time
	Kind EventKind
	Flow packet.FlowID
	Seq  int
	Size int
}

// Recorder accumulates events in memory.
type Recorder struct {
	Events []Event
}

// Record appends an event for packet p.
func (r *Recorder) Record(at sim.Time, kind EventKind, p *packet.Packet) {
	r.Events = append(r.Events, Event{At: at, Kind: kind, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
}

// Write emits the trace in a plain text format ("seconds kind flow seq
// size" per line).
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Events {
		if _, err := fmt.Fprintf(bw, "%.6f %s %d %d %d\n",
			e.At.Seconds(), e.Kind, e.Flow, e.Seq, e.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a trace in Write's format.
func Parse(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var secs float64
		var kind string
		var flow, seq, size int
		if _, err := fmt.Sscanf(text, "%f %s %d %d %d", &secs, &kind, &flow, &seq, &size); err != nil {
			return nil, fmt.Errorf("capture: line %d: %v", line, err)
		}
		k, err := kindFrom(kind)
		if err != nil {
			return nil, fmt.Errorf("capture: line %d: %v", line, err)
		}
		out = append(out, Event{
			At: sim.FromSeconds(secs), Kind: k,
			Flow: packet.FlowID(flow), Seq: seq, Size: size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SliceStat summarizes one time slice of the trace, per §2.3.
type SliceStat struct {
	Slice int
	// ActiveFlows is the number of distinct flows that appeared (any
	// event) up to and including this slice and were registered.
	ActiveFlows int
	// ShutdownFrac is the fraction of flows that delivered nothing in
	// this slice (the "completely shut down" population).
	ShutdownFrac float64
	// Top80Frac is the smallest fraction of flows that together
	// delivered ≥80% of the slice's bytes (the hog population).
	Top80Frac float64
	// DeliveredBytes is the slice's total delivered volume.
	DeliveredBytes int64
}

// Analyze computes per-slice statistics over [0, end) for the given
// flow population (flows are expected to exist for the whole trace, as
// in the §2.3 long-running-flow simulations).
func Analyze(events []Event, width sim.Time, flows int, end sim.Time) []SliceStat {
	if width <= 0 || flows <= 0 || end <= 0 {
		return nil
	}
	n := int(end / width)
	perSlice := make([]map[packet.FlowID]int64, n)
	for i := range perSlice {
		perSlice[i] = make(map[packet.FlowID]int64)
	}
	for _, e := range events {
		if e.Kind != Deliver || e.At >= end {
			continue
		}
		s := int(e.At / width)
		perSlice[s][e.Flow] += int64(e.Size)
	}
	out := make([]SliceStat, 0, n)
	for i, m := range perSlice {
		st := SliceStat{Slice: i, ActiveFlows: flows}
		var total int64
		vols := make([]int64, 0, len(m))
		for _, v := range m {
			total += v
			vols = append(vols, v)
		}
		st.DeliveredBytes = total
		st.ShutdownFrac = float64(flows-len(m)) / float64(flows)
		if total > 0 {
			sort.Slice(vols, func(a, b int) bool { return vols[a] > vols[b] })
			var acc int64
			k := 0
			for _, v := range vols {
				if float64(acc) >= 0.8*float64(total) {
					break
				}
				acc += v
				k++
			}
			st.Top80Frac = float64(k) / float64(flows)
		}
		out = append(out, st)
	}
	return out
}

// MeanShutdownFrac averages ShutdownFrac over the stats.
func MeanShutdownFrac(stats []SliceStat) float64 {
	if len(stats) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range stats {
		s += st.ShutdownFrac
	}
	return s / float64(len(stats))
}

// MeanTop80Frac averages Top80Frac over the stats.
func MeanTop80Frac(stats []SliceStat) float64 {
	if len(stats) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range stats {
		s += st.Top80Frac
	}
	return s / float64(len(stats))
}
