package markov

import (
	"fmt"
	"math"
)

// MaxLoss is the upper bound (exclusive) on the loss probability the
// repetitive-timeout aggregation supports: at p ≥ 0.5 the expected
// idle time 1/(1−2p) diverges (the flow backs off faster than it
// drains probability).
const MaxLoss = 0.5

// window-transition probabilities shared by both models.

// pUp is P(Sn→Sn+1): all n transmissions succeed (Eq. 1).
func pUp(p float64, n int) float64 { return math.Pow(1-p, float64(n)) }

// pFast is P(Sn→S⌊n/2⌋): exactly one loss, and the fast retransmission
// itself succeeds (Eq. 2). Defined for n ≥ 4 only.
func pFast(p float64, n int) float64 {
	return float64(n) * p * math.Pow(1-p, float64(n-1)) * (1 - p)
}

// ExpectedIdleEpochs returns the closed-form expected number of silent
// epochs a flow spends in the aggregated timeout state b* before
// retransmitting: 1/(1−2p) (Eq. 8). NaN for p outside [0, MaxLoss).
func ExpectedIdleEpochs(p float64) float64 {
	if p < 0 || p >= MaxLoss {
		return math.NaN()
	}
	return 1 / (1 - 2*p)
}

func checkParams(p float64, wmax int) error {
	if p <= 0 || p >= MaxLoss {
		return fmt.Errorf("markov: loss probability %v outside (0, %v)", p, MaxLoss)
	}
	if wmax < 4 {
		return fmt.Errorf("markov: Wmax %d too small (need ≥ 4 for fast retransmit states)", wmax)
	}
	return nil
}

// PartialModel builds the Fig 4 chain for loss probability p and
// maximum window wmax (the paper uses wmax = 6). States:
//
//	b0      one-epoch buffer of a simple timeout (from S4..SWmax)
//	b*      aggregated repetitive-timeout buffer (expected stay 1/(1−2p))
//	S1      timeout retransmit state
//	S2..SW  congestion window states
//
// Transitions follow Eqs. 1–3 and 9–10; timeouts from S2/S3 enter b*
// (they may carry backoff memory), timeouts from S4..SW pass through
// b0 (a new RTT measurement collapsed their backoff by the time the
// window regrew past 3, §3.1.1).
func PartialModel(p float64, wmax int) (*Chain, error) {
	if err := checkParams(p, wmax); err != nil {
		return nil, err
	}
	labels := []string{"b0", "b*", "S1"}
	groups := []int{0, 0, 1}
	for n := 2; n <= wmax; n++ {
		labels = append(labels, fmt.Sprintf("S%d", n))
		groups = append(groups, n)
	}
	c := &Chain{Labels: labels, Group: groups}
	n := len(labels)
	c.P = make([][]float64, n)
	for i := range c.P {
		c.P[i] = make([]float64, n)
	}
	idx := func(label string) int {
		i := c.StateIndex(label)
		if i < 0 {
			panic("markov: missing state " + label)
		}
		return i
	}
	b0, bstar, s1 := idx("b0"), idx("b*"), idx("S1")
	sIdx := func(w int) int { return idx(fmt.Sprintf("S%d", w)) }

	// b0 always proceeds to the retransmit state after its one epoch.
	c.P[b0][s1] = 1
	// Aggregated buffer: stay with 2p, retransmit with 1−2p (Eqs. 9–10).
	c.P[bstar][bstar] = 2 * p
	c.P[bstar][s1] = 1 - 2*p
	// Retransmit: success enters S2, failure re-enters the buffer.
	c.P[s1][sIdx(2)] = 1 - p
	c.P[s1][bstar] = p

	for w := 2; w <= wmax; w++ {
		row := c.P[sIdx(w)]
		up := pUp(p, w)
		if w < wmax {
			row[sIdx(w+1)] = up
		} else {
			row[sIdx(w)] = up // stay at Wmax
		}
		fast := 0.0
		if w >= 4 {
			fast = pFast(p, w)
			row[sIdx(w/2)] += fast
		}
		rto := 1 - up - fast
		if rto < 0 {
			rto = 0
		}
		if w >= 4 {
			row[b0] += rto
		} else {
			row[bstar] += rto
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// FullModel builds the Fig 5 chain: repetitive timeouts are expanded
// into explicit backoff stages 1..stages. Stage i has a buffer state
// Bi whose expected occupancy is 2^i − 1 epochs (geometric), and a
// retransmit state Ri. A successful Ri enters the window-2 state
// S2^(i), which still carries backoff memory (Karn's algorithm: the
// retransmission's ack yields no RTT sample), so a loss there
// escalates to stage i+1; its success reaches the clean S3. The last
// stage aggregates the infinite tail with expected occupancy
// (1−p)·2^K/(1−2p) − 1.
func FullModel(p float64, wmax, stages int) (*Chain, error) {
	if err := checkParams(p, wmax); err != nil {
		return nil, err
	}
	if stages < 1 {
		return nil, fmt.Errorf("markov: need ≥1 backoff stage, got %d", stages)
	}
	var labels []string
	var groups []int
	add := func(l string, g int) {
		labels = append(labels, l)
		groups = append(groups, g)
	}
	add("b0", 0)
	for i := 1; i <= stages; i++ {
		add(fmt.Sprintf("B%d", i), 0)
		add(fmt.Sprintf("R%d", i), 1)
		add(fmt.Sprintf("S2^%d", i), 2)
	}
	for n := 2; n <= wmax; n++ {
		add(fmt.Sprintf("S%d", n), n)
	}
	c := &Chain{Labels: labels, Group: groups}
	n := len(labels)
	c.P = make([][]float64, n)
	for i := range c.P {
		c.P[i] = make([]float64, n)
	}
	idx := func(format string, args ...any) int {
		i := c.StateIndex(fmt.Sprintf(format, args...))
		if i < 0 {
			panic("markov: missing state")
		}
		return i
	}

	// Expected buffer occupancies per stage.
	wait := func(i int) float64 {
		if i < stages {
			return float64(int(1)<<i) - 1 // 2^i − 1
		}
		// Aggregated tail from stage K onward.
		w := (1-p)*math.Pow(2, float64(i))/(1-2*p) - 1
		if w < 1 {
			w = 1
		}
		return w
	}

	// b0: the one-epoch wait of a simple timeout, then stage-1 rtx.
	c.P[idx("b0")][idx("R1")] = 1

	for i := 1; i <= stages; i++ {
		bi, ri, s2i := idx("B%d", i), idx("R%d", i), idx("S2^%d", i)
		w := wait(i)
		exit := 1 / w
		if exit > 1 {
			exit = 1
		}
		c.P[bi][ri] = exit
		c.P[bi][bi] = 1 - exit
		// Retransmit: success → tainted S2; failure → deeper stage.
		next := i + 1
		if next > stages {
			next = stages
		}
		c.P[ri][s2i] = 1 - p
		c.P[ri][idx("B%d", next)] = p
		// Tainted S2: the sender transmits two new segments.
		//   both arrive              → clean S3;
		//   first arrives, second lost → the new-data ack collapsed
		//     the backoff (RFC 6298 §5.7), so the timeout restarts
		//     at stage 1;
		//   first lost               → no new-data ack, the
		//     remembered backoff escalates to the next stage.
		c.P[s2i][idx("S3")] = (1 - p) * (1 - p)
		c.P[s2i][idx("B1")] += (1 - p) * p
		c.P[s2i][idx("B%d", next)] += p
	}

	sIdx := func(w int) int { return idx("S%d", w) }
	for w := 2; w <= wmax; w++ {
		row := c.P[sIdx(w)]
		up := pUp(p, w)
		if w < wmax {
			row[sIdx(w+1)] = up
		} else {
			row[sIdx(w)] = up
		}
		fast := 0.0
		if w >= 4 {
			fast = pFast(p, w)
			row[sIdx(w/2)] += fast
		}
		rto := 1 - up - fast
		if rto < 0 {
			rto = 0
		}
		if w >= 4 {
			// Simple timeout: one-epoch wait then stage-1 retransmit.
			row[idx("b0")] += rto
		} else {
			// Clean low-window timeout: first backoff stage.
			row[idx("B1")] += rto
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// TimeoutCurve evaluates the stationary timeout mass of the partial
// model at each loss probability in ps.
func TimeoutCurve(ps []float64, wmax int) ([]float64, error) {
	out := make([]float64, len(ps))
	for i, p := range ps {
		c, err := PartialModel(p, wmax)
		if err != nil {
			return nil, err
		}
		pi, err := c.Stationary()
		if err != nil {
			return nil, err
		}
		out[i] = c.TimeoutMass(pi)
	}
	return out, nil
}

// TippingPoint returns the smallest loss probability (searched on a
// fine grid over (0, MaxLoss)) at which the stationary timeout mass of
// the partial model reaches frac. The paper reads the knee of this
// curve as p_thresh ≈ 0.1 (§3.2, §4.3).
func TippingPoint(frac float64, wmax int) (float64, error) {
	const step = 0.002
	for p := step; p < MaxLoss; p += step {
		c, err := PartialModel(p, wmax)
		if err != nil {
			return 0, err
		}
		pi, err := c.Stationary()
		if err != nil {
			return 0, err
		}
		if c.TimeoutMass(pi) >= frac {
			return p, nil
		}
	}
	return math.NaN(), fmt.Errorf("markov: timeout mass never reaches %v below p=%v", frac, MaxLoss)
}
