// Package markov implements the paper's idealized Markov models of TCP
// in small packet regimes (§3.1): the partial model of Fig 4 with the
// aggregated repetitive-timeout buffer state b*, and the full model of
// Fig 5 with explicit backoff stages. Both are parameterized by a
// single packet-loss probability p and yield the stationary
// distribution of a flow across window/timeout states, the grouped
// "k packets sent per epoch" distribution validated in Fig 6, the
// closed-form expected idle time 1/(1−2p), and the timeout tipping
// point that motivates TAQ's admission-control threshold (§4.3).
package markov

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Chain is a finite discrete-time Markov chain with labeled states.
// Each transition corresponds to one epoch (RTT) of the modeled flow.
type Chain struct {
	// Labels names each state (e.g. "S3", "b*", "R2").
	Labels []string
	// P is the row-stochastic transition matrix.
	P [][]float64
	// Group[i] classifies state i by the number of packets the flow
	// transmits during an epoch spent in that state: 0 for buffer
	// (silent) states, 1 for retransmit states, n for window state Sn.
	Group []int
}

// Validate checks that P is square, matches the label count, has
// non-negative entries, and that every row sums to 1 within tolerance.
func (c *Chain) Validate() error {
	n := len(c.Labels)
	if len(c.P) != n || len(c.Group) != n {
		return fmt.Errorf("markov: inconsistent sizes: %d labels, %d rows, %d groups", n, len(c.P), len(c.Group))
	}
	for i, row := range c.P {
		if len(row) != n {
			return fmt.Errorf("markov: row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < -1e-12 || math.IsNaN(v) {
				return fmt.Errorf("markov: P[%d][%d] = %v is invalid", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("markov: row %d (%s) sums to %v", i, c.Labels[i], sum)
		}
	}
	return nil
}

// StateIndex returns the index of the state with the given label, or
// -1 if absent.
func (c *Chain) StateIndex(label string) int {
	for i, l := range c.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// Stationary solves πP = π, Σπ = 1 by Gaussian elimination with
// partial pivoting. It returns an error if the linear system is
// singular (e.g. a disconnected chain).
func (c *Chain) Stationary() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.P)
	// Build A = Pᵀ − I; replace the last equation with Σπ = 1.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.P[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1

	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, errors.New("markov: singular system; chain may be reducible")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	pi := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i][k] * pi[k]
		}
		pi[i] = s / a[i][i]
	}
	// Clean tiny negative round-off and renormalize.
	total := 0.0
	for i := range pi {
		if pi[i] < 0 && pi[i] > -1e-9 {
			pi[i] = 0
		}
		total += pi[i]
	}
	if total <= 0 {
		return nil, errors.New("markov: stationary vector degenerate")
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}

// StationaryPower approximates the stationary distribution by power
// iteration (used by tests to cross-check the direct solver).
func (c *Chain) StationaryPower(iters int) []float64 {
	n := len(c.P)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += pi[i] * c.P[i][j]
			}
		}
		pi, next = next, pi
	}
	return pi
}

// SentDistribution folds a stationary vector into the "k packets sent
// per epoch" classes plotted in Fig 6. Keys are the group values (0 =
// silent buffer epochs, 1 = retransmit epochs, n = window-n epochs).
func (c *Chain) SentDistribution(pi []float64) map[int]float64 {
	out := make(map[int]float64)
	for i, g := range c.Group {
		out[g] += pi[i]
	}
	return out
}

// TimeoutMass returns the stationary probability of being in a
// timeout-related state (silent buffers plus retransmit states), i.e.
// groups 0 and 1.
func (c *Chain) TimeoutMass(pi []float64) float64 {
	m := 0.0
	for i, g := range c.Group {
		if g <= 1 {
			m += pi[i]
		}
	}
	return m
}

// DOT renders the chain in Graphviz format, one node per state (timeout
// states drawn as boxes) and one edge per nonzero transition labeled
// with its probability — a machine-readable Fig 4/Fig 5.
func (c *Chain) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", name)
	for i, label := range c.Labels {
		shape := "circle"
		if c.Group[i] <= 1 {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", label, shape)
	}
	for i, row := range c.P {
		for j, p := range row {
			if p > 1e-12 {
				fmt.Fprintf(&b, "  %q -> %q [label=\"%.3f\"];\n",
					c.Labels[i], c.Labels[j], p)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ExpectedThroughput returns the model's long-run send rate in packets
// per epoch: the stationary expectation of the per-state packet count
// (Σ πᵢ·groupᵢ). Dividing by the epoch (RTT) gives the familiar
// packets-per-second model throughput; unlike Padhye-style formulas
// the full distribution is available, not just this mean (§6).
func (c *Chain) ExpectedThroughput(pi []float64) float64 {
	t := 0.0
	for i, g := range c.Group {
		t += pi[i] * float64(g)
	}
	return t
}
