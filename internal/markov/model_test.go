package markov

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func stationaryOf(t *testing.T, c *Chain) []float64 {
	t.Helper()
	pi, err := c.Stationary()
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	return pi
}

func TestPartialModelValidates(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.45} {
		c, err := PartialModel(p, 6)
		if err != nil {
			t.Fatalf("PartialModel(%v): %v", p, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
}

func TestPartialModelRejectsBadParams(t *testing.T) {
	for _, p := range []float64{-0.1, 0, 0.5, 0.9} {
		if _, err := PartialModel(p, 6); err == nil {
			t.Errorf("PartialModel(%v) accepted invalid p", p)
		}
	}
	if _, err := PartialModel(0.1, 3); err == nil {
		t.Error("PartialModel accepted Wmax=3")
	}
}

func TestStationarySumsToOne(t *testing.T) {
	for _, p := range []float64{0.02, 0.1, 0.3} {
		c, _ := PartialModel(p, 6)
		pi := stationaryOf(t, c)
		sum := 0.0
		for _, v := range pi {
			if v < 0 {
				t.Errorf("p=%v: negative stationary entry %v", p, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("p=%v: sum = %v", p, sum)
		}
	}
}

func TestStationaryMatchesPowerIteration(t *testing.T) {
	for _, build := range []func(p float64) (*Chain, error){
		func(p float64) (*Chain, error) { return PartialModel(p, 6) },
		func(p float64) (*Chain, error) { return FullModel(p, 6, 4) },
	} {
		for _, p := range []float64{0.05, 0.15, 0.3} {
			c, err := build(p)
			if err != nil {
				t.Fatal(err)
			}
			direct := stationaryOf(t, c)
			power := c.StationaryPower(20000)
			for i := range direct {
				if math.Abs(direct[i]-power[i]) > 1e-6 {
					t.Errorf("p=%v state %s: direct %v vs power %v",
						p, c.Labels[i], direct[i], power[i])
				}
			}
		}
	}
}

func TestLowLossMostlyAtWmax(t *testing.T) {
	c, _ := PartialModel(0.005, 6)
	pi := stationaryOf(t, c)
	if top := pi[c.StateIndex("S6")]; top < 0.8 {
		t.Errorf("at p=0.005 S6 mass = %v, want ≥0.8 (flow should sit at Wmax)", top)
	}
	if m := c.TimeoutMass(pi); m > 0.05 {
		t.Errorf("timeout mass %v at p=0.005, want tiny", m)
	}
}

func TestHighLossMostlyTimedOut(t *testing.T) {
	c, _ := PartialModel(0.35, 6)
	pi := stationaryOf(t, c)
	if m := c.TimeoutMass(pi); m < 0.7 {
		t.Errorf("timeout mass %v at p=0.35, want ≥0.7", m)
	}
}

func TestTimeoutMassMonotonic(t *testing.T) {
	ps := []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	curve, err := TimeoutCurve(ps, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Errorf("timeout mass decreased: p=%v→%v mass %v→%v",
				ps[i-1], ps[i], curve[i-1], curve[i])
		}
	}
}

func TestTippingPointNearTenPercent(t *testing.T) {
	// §3.2: "when the loss rate jumps beyond 10%, the probability of
	// timeouts rapidly increases". Half the stationary mass in
	// timeout states is a natural reading of the knee.
	p, err := TippingPoint(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 || p > 0.2 {
		t.Errorf("tipping point = %v, want in [0.05, 0.2] (paper: ≈0.1)", p)
	}
	t.Logf("tipping point (timeout mass ≥ 0.5): p = %.3f", p)
}

func TestExpectedIdleEpochsClosedForm(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0, 1},    // no repeats: one idle epoch
		{0.25, 2}, // 1/(1-0.5)
		{0.4, 5},  // 1/(1-0.8)
		{0.125, 4. / 3},
	}
	for _, c := range cases {
		if got := ExpectedIdleEpochs(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExpectedIdleEpochs(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(ExpectedIdleEpochs(0.5)) || !math.IsNaN(ExpectedIdleEpochs(-0.1)) {
		t.Error("out-of-domain p should yield NaN")
	}
}

func TestBstarMeanOccupancyMatchesClosedForm(t *testing.T) {
	// The b* self-loop probability 2p gives a geometric stay of mean
	// 1/(1−2p): verify the chain encodes exactly that.
	for _, p := range []float64{0.1, 0.2, 0.3} {
		c, _ := PartialModel(p, 6)
		b := c.StateIndex("b*")
		stay := c.P[b][b]
		mean := 1 / (1 - stay)
		if math.Abs(mean-ExpectedIdleEpochs(p)) > 1e-12 {
			t.Errorf("p=%v: chain mean stay %v, closed form %v", p, mean, ExpectedIdleEpochs(p))
		}
	}
}

func TestSentDistributionSumsToOne(t *testing.T) {
	c, _ := PartialModel(0.15, 6)
	pi := stationaryOf(t, c)
	dist := c.SentDistribution(pi)
	sum := 0.0
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sent distribution sums to %v", sum)
	}
	// Groups 0..wmax all present.
	for g := 0; g <= 6; g++ {
		if _, ok := dist[g]; !ok {
			t.Errorf("group %d missing", g)
		}
	}
}

func TestFullModelValidates(t *testing.T) {
	for _, p := range []float64{0.05, 0.15, 0.3} {
		for _, k := range []int{1, 3, 5} {
			c, err := FullModel(p, 6, k)
			if err != nil {
				t.Fatalf("FullModel(%v, 6, %d): %v", p, k, err)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("p=%v k=%d: %v", p, k, err)
			}
		}
	}
	if _, err := FullModel(0.1, 6, 0); err == nil {
		t.Error("FullModel accepted 0 stages")
	}
}

func TestFullModelDeeperStagesVisitedLessOften(t *testing.T) {
	// The retransmit states R_i are each occupied exactly one epoch
	// per passage, so their stationary mass tracks the visit rate:
	// deeper backoff stages must be entered less often. (The buffer
	// states B_i need not be monotone — occupancy doubles per stage.)
	c, err := FullModel(0.2, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	pi := stationaryOf(t, c)
	prev := math.Inf(1)
	for i := 1; i <= 4; i++ {
		m := pi[c.StateIndex("R"+string(rune('0'+i)))]
		if m > prev+1e-12 {
			t.Errorf("R%d visit mass %v exceeds R%d mass %v", i, m, i-1, prev)
		}
		prev = m
	}
}

func TestFullAndPartialModelsAgreeRoughly(t *testing.T) {
	// The two models aggregate repetitive timeouts differently (the
	// full model tracks backoff memory through the tainted S2 states,
	// so it is somewhat heavier at high p) but must tell the same
	// story: similar timeout mass, and both past 50% by p=0.25.
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3} {
		cp, _ := PartialModel(p, 6)
		cf, _ := FullModel(p, 6, 6)
		pip := stationaryOf(t, cp)
		pif := stationaryOf(t, cf)
		mp, mf := cp.TimeoutMass(pip), cf.TimeoutMass(pif)
		if math.Abs(mp-mf) > 0.2 {
			t.Errorf("p=%v: partial timeout mass %v vs full %v", p, mp, mf)
		}
		if p >= 0.25 && (mp < 0.5 || mf < 0.5) {
			t.Errorf("p=%v: expected both models past 50%% timeout mass (got %v, %v)", p, mp, mf)
		}
	}
}

func TestChainValidateCatchesBadRows(t *testing.T) {
	c := &Chain{
		Labels: []string{"a", "b"},
		Group:  []int{0, 1},
		P:      [][]float64{{0.5, 0.4}, {0, 1}}, // row 0 sums to 0.9
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted non-stochastic row")
	}
	c.P[0][1] = 0.5
	if err := c.Validate(); err != nil {
		t.Errorf("Validate rejected valid chain: %v", err)
	}
}

func TestStateIndexMissing(t *testing.T) {
	c, _ := PartialModel(0.1, 6)
	if c.StateIndex("nope") != -1 {
		t.Error("StateIndex should return -1 for unknown label")
	}
}

// Property: for random valid p and wmax, the stationary distribution
// exists, is a probability vector, and timeout mass is in [0,1].
func TestStationaryProperty(t *testing.T) {
	f := func(pRaw uint16, wRaw uint8) bool {
		p := 0.01 + 0.47*float64(pRaw)/65535
		wmax := 4 + int(wRaw)%8
		c, err := PartialModel(p, wmax)
		if err != nil {
			return false
		}
		pi, err := c.Stationary()
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range pi {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			sum += v
		}
		m := c.TimeoutMass(pi)
		return math.Abs(sum-1) < 1e-9 && m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestWmaxExtensionKeepsLowLossConcentration(t *testing.T) {
	// §3.1: "the model may be extended to higher states by increasing
	// Wmax". At small p the mass must concentrate in the top window
	// states for any Wmax.
	// Single losses trigger fast retransmit (halving), so the mass
	// concentrates in the upper half of the window range rather than
	// strictly at Wmax.
	for _, wmax := range []int{6, 8, 10} {
		c, _ := PartialModel(0.01, wmax)
		pi := stationaryOf(t, c)
		top := 0.0
		for w := wmax / 2; w <= wmax; w++ {
			top += pi[c.StateIndex(fmt.Sprintf("S%d", w))]
		}
		if top < 0.9 {
			t.Errorf("Wmax=%d: upper-half window mass %v, want ≥0.9 at p=0.01", wmax, top)
		}
	}
}

func TestExpectedThroughputDecreasingInLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range []float64{0.02, 0.1, 0.2, 0.3, 0.4} {
		c, _ := PartialModel(p, 6)
		pi := stationaryOf(t, c)
		th := c.ExpectedThroughput(pi)
		if th <= 0 || th > 6 {
			t.Errorf("p=%v: throughput %v outside (0, 6]", p, th)
		}
		if th >= prev {
			t.Errorf("p=%v: throughput %v not decreasing (prev %v)", p, th, prev)
		}
		prev = th
	}
}

func TestDOTExport(t *testing.T) {
	c, _ := PartialModel(0.1, 6)
	dot := c.DOT("partial")
	for _, want := range []string{"digraph", `"b*"`, `"S6"`, "->", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every state appears as a node.
	for _, l := range c.Labels {
		if !strings.Contains(dot, fmt.Sprintf("%q", l)) {
			t.Errorf("state %s missing from DOT", l)
		}
	}
}
